"""Serving throughput: ``Engine.fit_many`` scaling across pool workers.

The PR-4 engine recorded its pool-vs-serial ratio without gating it: numpy
kernels are largely GIL-serialized, so the pool could not win.  The
``numba-parallel`` backend exists to change that -- its kernels are
compiled ``nogil=True`` -- and this benchmark is where the claim is
measured and enforced: ``fit_many`` over ``SERVE_JOBS`` distinct MSTs at
1/2/4/8 workers, recorded as jobs/second plus ratios against the 1-worker
rate (artifact ``benchmarks/BENCH_serving.json``; smoke runs write
``BENCH_serving_smoke.json``).

Acceptance bar (asserted only where it is measurable: numba installed,
>= 4 cores, and at least ``GATE_MIN_EDGES`` per job -- below that, kernels
run for microseconds and the ratio measures GIL-held Python orchestration,
not the backend): on the ``numba-parallel`` backend the 4-worker
throughput is **>= 2x** the 1-worker rate at full size, >= 1.3x between
``GATE_MIN_EDGES`` and full size (``tests/test_serving.py`` wires the
same 1.3x gate into the engine CI job at 60k edges per job).
Environments without numba or without the cores record the measured
ratios ungated -- the numpy column documents exactly the GIL-serialization
this backend fixes.

Correctness is gated unconditionally before any timing: every
``fit_many`` handle must be bit-identical to the serial ``pandora()``
parents, at every worker count.

A second, backend-independent bar guards the resilience layer (PR 6):
running the same 4-worker batch under a default :class:`ServePolicy` --
envelopes, context snapshots, armed fault hooks, but **no injected
faults** -- must cost at most ``POLICY_OVERHEAD_GATE`` (3%) over the
plain raise-first path.  Like the scaling gate it is recorded at every
size but asserted only at >= ``GATE_MIN_EDGES``, where per-job kernel
time is large enough that the ratio measures the hooks rather than
timer noise.

A third bar guards the PR-10 observability layer: the same 4-worker
policy batch with ``repro.obs`` enabled (metric mirrors at every seam,
one span tree per request) against ``repro.obs.set_enabled(False)`` must
cost at most ``OBS_OVERHEAD_GATE`` (3%).  Asserted at the same
``GATE_MIN_EDGES`` floor.

A fourth column measures the PR-8 process fault domain: ``fit_many`` with
``executor="process"`` (the supervised :class:`ShardPool`) at
``PROCESS_SHARDS`` shards, jobs/second against the 1-shard rate, plus a
supervisor-overhead gate -- the supervised pool (heartbeats, scan ticks,
re-dispatch accounting, per-job pickling discipline) must cost at most
``SUPERVISOR_OVERHEAD_GATE`` (5%) over a bare
``concurrent.futures.ProcessPoolExecutor`` running the identical jobs at
the same worker count.  Each repeat uses a *distinct* problem set (child
Engines carry content-keyed artifact caches, so re-submitting one set
would time cache hits), with a separate warm set spawning workers and
warming child JIT state before any timing.  Parity against serial
``pandora()`` parents is asserted for every set on both pools; the ratio
is asserted only at >= ``GATE_MIN_EDGES`` and >= 2 cores, where per-job
kernel time dominates IPC noise.

Note on threading layers: with intra-kernel ``prange`` active, concurrent
parallel regions want numba's ``tbb`` threading layer (the default
``workqueue`` is thread-safe but serializes regions across jobs); the CI
jobs install ``tbb``.  The measured ``threading_layer`` is recorded in the
artifact.

Run as pytest (``pytest benchmarks/bench_serving.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from conftest import scaled
from repro.core.pandora import pandora
from repro.engine import Engine
from repro.engine.engine import _fit_problem
from repro.engine.resilience import ServePolicy
from repro.parallel import backend_available, debug_checks_set, use_backend
from repro.structures.tree import random_spanning_tree

SERVE_JOBS = 8
WORKER_COUNTS = (1, 2, 4, 8)
N_EDGES = scaled(150_000)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
#: Below this many edges per job the run is a smoke run: the artifact goes
#: to the smoke file and the gate drops to the smoke ratio.
FULL_SIZE = 100_000
FULL_GATE = 2.0
SMOKE_GATE = 1.3
#: Below this many edges per job the gate is recorded but never asserted:
#: kernels run for microseconds there and GIL-held Python orchestration
#: dominates, so the ratio measures overhead, not the backend.  The
#: smoke-scale scaling gate lives in tests/test_serving.py at 60k edges.
GATE_MIN_EDGES = 50_000
#: Max allowed slowdown of policy-enabled serving (default ServePolicy,
#: no faults injected) over the plain raise-first path at 4 workers.
POLICY_OVERHEAD_GATE = 1.03
POLICY_WORKERS = 4
#: Max allowed slowdown of the observability layer (metrics mirrors +
#: request span trees, PR 10) on the policy path at 4 workers: the same
#: batch with ``repro.obs`` enabled (the default) against
#: ``set_enabled(False)``.  The ISSUE budget is 3%.
OBS_OVERHEAD_GATE = 1.03
#: Shard counts for the process-executor column (jobs/second each).
PROCESS_SHARDS = (1, 2, 4)
#: Max allowed slowdown of the supervised ShardPool over a bare
#: ProcessPoolExecutor doing identical jobs at the same worker count.
SUPERVISOR_OVERHEAD_GATE = 1.05
PROCESS_OVERHEAD_SHARDS = 2

_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_serving.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_serving_smoke.json")


def _problems(n_jobs: int, n_edges: int) -> list[tuple]:
    out = []
    for i in range(n_jobs):
        rng = np.random.default_rng(900 + i)
        out.append(random_spanning_tree(n_edges + 1, rng,
                                        skew=0.1 + 0.05 * i))
    return out


def _threading_layer() -> str | None:
    """Numba's active threading layer, forcing initialization if needed."""
    try:
        import numba

        numba.njit(parallel=True, nogil=True)(
            lambda x: x.sum()
        )(np.zeros(1))
        return str(numba.threading_layer())
    except Exception:  # noqa: BLE001 - purely informational
        return None


def _stats(samples: list, n_jobs: int) -> dict:
    best = min(samples)
    return {
        "seconds": {"best": best, "mean": float(np.mean(samples)),
                    "std": float(np.std(samples))},
        "jobs_per_second": round(n_jobs / best, 3),
    }


def _check_parity(handles, refs, label: str) -> None:
    for i, (ref, handle) in enumerate(zip(refs, handles)):
        if not np.array_equal(handle.parent, ref):
            raise AssertionError(
                f"{label}: job {i} parents differ from serial pandora()"
            )


def _process_problem_sets(n_edges: int, repeats: int):
    """``repeats`` timed problem sets plus one warm set, all distinct
    content: child Engines cache by content key, so re-timing one set
    would measure cache hits instead of serving."""
    sets = [
        [
            random_spanning_tree(
                n_edges + 1, np.random.default_rng(5000 + 97 * s + i),
                skew=0.1 + 0.05 * i,
            )
            for i in range(SERVE_JOBS)
        ]
        for s in range(repeats + 1)
    ]
    return sets[:-1], sets[-1]


def _bare_init(backend_name: str) -> None:
    """Initializer of the bare comparison pool: the same spawn-safe
    bootstrap ShardPool workers run, minus all supervision."""
    from repro.engine.worker import _worker_engine, reset_inherited_context

    reset_inherited_context(backend_name)
    _worker_engine()


def _bare_fit(payload: tuple):
    from repro.engine.worker import _run_fit

    return _run_fit(payload)


def _measure_process_pool(problem_sets, refs_per_set, warm_set,
                          shards: int) -> dict:
    engine = Engine(executor="process", shards=shards)
    try:
        engine.fit_many(warm_set)  # spawn workers, warm child JIT/caches
        samples = []
        for problems, refs in zip(problem_sets, refs_per_set):
            t0 = time.perf_counter()
            out = engine.fit_many(problems)
            samples.append(time.perf_counter() - t0)
            _check_parity(out, refs, f"shardpool shards={shards}")
    finally:
        engine.shutdown()
    return _stats(samples, SERVE_JOBS)


def _measure_bare_pool(problem_sets, refs_per_set, warm_set, workers: int,
                       backend_name: str, start_method: str) -> dict:
    ctx = mp.get_context(start_method)
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                             initializer=_bare_init,
                             initargs=(backend_name,)) as pool:
        list(pool.map(_bare_fit, [_fit_problem(p) for p in warm_set]))
        samples = []
        for problems, refs in zip(problem_sets, refs_per_set):
            payloads = [_fit_problem(p) for p in problems]
            t0 = time.perf_counter()
            out = list(pool.map(_bare_fit, payloads))
            samples.append(time.perf_counter() - t0)
            _check_parity(out, refs, f"bare pool workers={workers}")
    return _stats(samples, SERVE_JOBS)


def _measure(problems, workers: int, repeats: int, serial_ref,
             policy: ServePolicy | None = None) -> dict:
    samples = []
    for _ in range(repeats):
        # Fresh engine per run: the content cache would otherwise make
        # every repeat free.
        engine = Engine(cache_entries=2 * len(problems))
        t0 = time.perf_counter()
        out = engine.fit_many(problems, max_workers=workers, policy=policy)
        samples.append(time.perf_counter() - t0)
        handles = [r.unwrap() for r in out] if policy is not None else out
        for i, (ref, handle) in enumerate(zip(serial_ref, handles)):
            if not np.array_equal(handle.parent, ref):
                raise AssertionError(
                    f"fit_many parents differ from serial at job {i}, "
                    f"workers={workers}, policy={policy is not None}"
                )
    best = min(samples)
    return {
        "seconds": {"best": best, "mean": float(np.mean(samples)),
                    "std": float(np.std(samples))},
        "jobs_per_second": round(len(problems) / best, 3),
    }


def run_serving_bench(
    n_edges: int = N_EDGES, repeats: int = REPEATS, artifact: str | None = None
) -> dict:
    if artifact is None:
        artifact = ARTIFACT if n_edges >= FULL_SIZE else SMOKE_ARTIFACT
    backend_name = ("numba-parallel" if backend_available("numba-parallel")
                    else "numpy")
    problems = _problems(SERVE_JOBS, n_edges)

    with use_backend(backend_name) as backend, debug_checks_set(False):
        if hasattr(backend, "warmup"):
            backend.warmup()
        serial_ref = [pandora(u, v, w)[0].parent for u, v, w in problems]
        # Warm every pool thread's JIT/workspace state before timing.
        Engine(cache_entries=2 * SERVE_JOBS).fit_many(
            problems, max_workers=max(WORKER_COUNTS)
        )
        by_workers = {
            w: _measure(problems, w, repeats, serial_ref)
            for w in WORKER_COUNTS
        }
        # Resilience-overhead column: the same batch under a default
        # ServePolicy (envelopes + armed hooks, zero injected faults)
        # against the plain raise-first path, interleaved fresh plain
        # runs so both sides see the same machine state.
        policy_runs = _measure(problems, POLICY_WORKERS, repeats,
                               serial_ref, policy=ServePolicy())
        plain_runs = _measure(problems, POLICY_WORKERS, repeats, serial_ref)

        # Observability-overhead column (PR 10): the identical policy
        # batch with the obs layer switched off.  ``policy_runs`` above
        # ran with obs on (the default), so the ratio isolates the
        # metric mirrors + span-tree cost at dispatcher granularity.
        from repro.obs import clear_spans, enabled, set_enabled

        assert enabled(), "obs must be on for the overhead baseline"
        set_enabled(False)
        try:
            obs_off_runs = _measure(problems, POLICY_WORKERS, repeats,
                                    serial_ref, policy=ServePolicy())
        finally:
            set_enabled(True)
            clear_spans()

        # Process-executor column: the supervised ShardPool at 1/2/4
        # shards plus the bare-ProcessPoolExecutor comparison at the
        # overhead shard count.
        start_method = ("fork" if "fork" in mp.get_all_start_methods()
                        else "spawn")
        proc_sets, proc_warm = _process_problem_sets(n_edges, repeats)
        proc_refs = [
            [pandora(u, v, w)[0].parent for u, v, w in problem_set]
            for problem_set in proc_sets
        ]
        by_shards = {
            k: _measure_process_pool(proc_sets, proc_refs, proc_warm, k)
            for k in PROCESS_SHARDS
        }
        bare_runs = _measure_bare_pool(
            proc_sets, proc_refs, proc_warm, PROCESS_OVERHEAD_SHARDS,
            backend_name, start_method,
        )

    base = by_workers[WORKER_COUNTS[0]]["jobs_per_second"]
    scaling = {
        str(w): round(by_workers[w]["jobs_per_second"] / max(base, 1e-12), 3)
        for w in WORKER_COUNTS
    }
    cpus = os.cpu_count() or 1
    gate = FULL_GATE if n_edges >= FULL_SIZE else SMOKE_GATE
    gated = (backend_name == "numba-parallel" and cpus >= 4
             and n_edges >= GATE_MIN_EDGES)
    overhead = (policy_runs["seconds"]["best"]
                / max(plain_runs["seconds"]["best"], 1e-12))
    obs_overhead = (policy_runs["seconds"]["best"]
                    / max(obs_off_runs["seconds"]["best"], 1e-12))
    proc_base = by_shards[PROCESS_SHARDS[0]]["jobs_per_second"]
    supervisor_overhead = (
        by_shards[PROCESS_OVERHEAD_SHARDS]["seconds"]["best"]
        / max(bare_runs["seconds"]["best"], 1e-12)
    )
    report = {
        "bench": "serving",
        "backend": backend_name,
        "releases_gil": bool(getattr(backend, "releases_gil", False)),
        "cpu_count": cpus,
        "threading_layer": _threading_layer(),
        "n_jobs": SERVE_JOBS,
        "n_edges_per_job": int(n_edges),
        "repeats": int(repeats),
        "unit": "jobs/second (best of repeats)",
        "by_workers": {str(w): by_workers[w] for w in WORKER_COUNTS},
        "scaling_vs_1_worker": scaling,
        "parity": True,
        "gate": {"workers": 4, "min_ratio": gate, "asserted": gated},
        "policy_overhead": {
            "workers": POLICY_WORKERS,
            "plain": plain_runs,
            "policy": policy_runs,
            "overhead_ratio": round(overhead, 4),
            "max_ratio": POLICY_OVERHEAD_GATE,
            # Backend-independent: the hook/envelope cost exists on every
            # backend, so only the size floor conditions the assertion.
            "asserted": n_edges >= GATE_MIN_EDGES,
        },
        "obs_overhead": {
            "workers": POLICY_WORKERS,
            "obs_off": obs_off_runs,
            "obs_on": policy_runs,
            "overhead_ratio": round(obs_overhead, 4),
            "max_ratio": OBS_OVERHEAD_GATE,
            # Same floor as the policy gate: below it the batch is
            # timer-noise-dominated and the ratio means nothing.
            "asserted": n_edges >= GATE_MIN_EDGES,
        },
        "process_pool": {
            "start_method": start_method,
            "by_shards": {str(k): by_shards[k] for k in PROCESS_SHARDS},
            "scaling_vs_1_shard": {
                str(k): round(by_shards[k]["jobs_per_second"]
                              / max(proc_base, 1e-12), 3)
                for k in PROCESS_SHARDS
            },
            "supervisor_overhead": {
                "shards": PROCESS_OVERHEAD_SHARDS,
                "bare": bare_runs,
                "pool": by_shards[PROCESS_OVERHEAD_SHARDS],
                "overhead_ratio": round(supervisor_overhead, 4),
                "max_ratio": SUPERVISOR_OVERHEAD_GATE,
                # Below the size floor the jobs are IPC-dominated and the
                # ratio measures pipe scheduling, not the supervisor; on
                # one core the two pools contend non-deterministically.
                "asserted": n_edges >= GATE_MIN_EDGES and cpus >= 2,
            },
        },
    }
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_serving_bench():
    report = run_serving_bench()
    print(f"\n[serving] backend={report['backend']} "
          f"cpus={report['cpu_count']} layer={report['threading_layer']} "
          f"jobs={report['n_jobs']}x{report['n_edges_per_job']} edges")
    print(f"[serving] scaling_vs_1_worker={report['scaling_vs_1_worker']}")
    overhead = report["policy_overhead"]
    print(f"[serving] policy_overhead_ratio={overhead['overhead_ratio']} "
          f"at {overhead['workers']} workers "
          f"(gate <= {overhead['max_ratio']}, "
          f"asserted={overhead['asserted']})")
    obs = report["obs_overhead"]
    print(f"[serving] obs_overhead_ratio={obs['overhead_ratio']} "
          f"at {obs['workers']} workers (gate <= {obs['max_ratio']}, "
          f"asserted={obs['asserted']})")
    proc = report["process_pool"]
    sup = proc["supervisor_overhead"]
    print(f"[serving] process scaling_vs_1_shard={proc['scaling_vs_1_shard']} "
          f"({proc['start_method']})")
    print(f"[serving] supervisor_overhead_ratio={sup['overhead_ratio']} "
          f"at {sup['shards']} shards (gate <= {sup['max_ratio']}, "
          f"asserted={sup['asserted']})")
    full = report["n_edges_per_job"] >= FULL_SIZE
    assert os.path.exists(ARTIFACT if full else SMOKE_ARTIFACT)
    gate = report["gate"]
    if gate["asserted"]:
        ratio = report["scaling_vs_1_worker"]["4"]
        assert ratio >= gate["min_ratio"], (
            f"numba-parallel fit_many at 4 workers only {ratio}x the "
            f"1-worker rate (gate {gate['min_ratio']}x)"
        )
    if overhead["asserted"]:
        assert overhead["overhead_ratio"] <= overhead["max_ratio"], (
            f"default ServePolicy costs {overhead['overhead_ratio']}x the "
            f"plain path at {overhead['workers']} workers with no faults "
            f"(gate {overhead['max_ratio']}x)"
        )
    if obs["asserted"]:
        assert obs["overhead_ratio"] <= obs["max_ratio"], (
            f"observability layer costs {obs['overhead_ratio']}x the "
            f"obs-off policy path at {obs['workers']} workers "
            f"(gate {obs['max_ratio']}x)"
        )
    if sup["asserted"]:
        assert sup["overhead_ratio"] <= sup["max_ratio"], (
            f"supervised ShardPool costs {sup['overhead_ratio']}x a bare "
            f"ProcessPoolExecutor at {sup['shards']} shards "
            f"(gate {sup['max_ratio']}x)"
        )


if __name__ == "__main__":
    print(json.dumps(run_serving_bench(), indent=2, sort_keys=True))
