"""Merge every ``BENCH_*.json`` artifact into one perf-trajectory summary.

The nightly workflow runs the full-size benchmark suite and then this
script, so the job log ends with a single table of the headline number
from each artifact -- the repo's performance trajectory at a glance,
without opening any JSON.  Deliberately dependency-free (stdlib only): it
must run before the package installs and on artifacts downloaded outside
the repo.

Usage::

    python benchmarks/trajectory.py [--dir benchmarks] [--json out.json]

Unknown or partial artifacts degrade to a generic line rather than
failing: the trajectory must keep printing as benchmarks evolve.
"""

from __future__ import annotations

import argparse
import glob
import json
import os

_DIR = os.path.dirname(os.path.abspath(__file__))


def _get(d: dict, *path, default=None):
    for key in path:
        if not isinstance(d, dict) or key not in d:
            return default
        d = d[key]
    return d


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}{suffix}"
    return f"{value}{suffix}"


def _headline(name: str, data: dict) -> list[tuple[str, str]]:
    """(metric, value) headline rows for one artifact, best-effort."""
    bench = data.get("bench", name)
    if bench == "hotpath_speedup":
        return [
            ("end-to-end speedup vs seed",
             _fmt(_get(data, "speedup", "total"), "x")),
            ("contraction+expansion speedup",
             _fmt(_get(data, "speedup", "contraction_plus_expansion"), "x")),
        ]
    if bench == "sort":
        sizes = data.get("sizes", {})
        largest = _get(sizes, max(sizes, key=lambda s: int(s)), default={}) \
            if sizes else {}
        return [
            ("canonical radix vs lexsort (largest n)",
             _fmt(_get(largest, "backends", "numpy", "canonical", "speedup"),
                  "x")),
            ("e2e sort-phase speedup / sort fraction",
             f"{_fmt(_get(largest, 'e2e_numpy', 'sort_phase_speedup'), 'x')}"
             f" / {_fmt(_get(largest, 'e2e_numpy', 'radix', 'sort_fraction'))}"),
        ]
    if bench == "backends":
        return [
            ("numba total speedup vs numpy",
             _fmt(_get(data, "numba_speedup_vs_numpy", "total"), "x")),
            ("numpy sort fraction",
             _fmt(_get(data, "variants", "numpy", "sort_fraction"))),
        ]
    if bench == "engine":
        return [
            ("batched multi-mpts vs naive loop",
             _fmt(_get(data, "multi_mpts", "speedup"), "x")),
            ("pool vs serial (legacy recording)",
             _fmt(_get(data, "serving", "pool_vs_serial"), "x")),
        ]
    if bench == "serving":
        backend = data.get("backend", "?")
        return [
            (f"fit_many 4-worker scaling [{backend}]",
             _fmt(_get(data, "scaling_vs_1_worker", "4"), "x")),
            (f"fit_many 8-worker scaling [{backend}]",
             _fmt(_get(data, "scaling_vs_1_worker", "8"), "x")),
        ]
    if bench == "spatial":
        n = _get(data, "n_points")
        return [
            (f"hdbscan e2e seconds [numpy, n={_fmt(n)}]",
             _fmt(_get(data, "backends", "numpy", "hdbscan_e2e", "best"),
                  "s")),
            ("numba-parallel e2e speedup vs numpy",
             _fmt(_get(data, "speedup_vs_numpy", "numba-parallel"), "x")),
        ]
    # Unknown artifact: surface its scalar fields rather than failing.
    scalars = [(k, _fmt(v)) for k, v in sorted(data.items())
               if isinstance(v, (int, float, str))][:3]
    return scalars or [("(no scalar headline)", "-")]


def collect(directory: str) -> list[dict]:
    rows = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            rows.append({"artifact": name, "metric": "(unreadable)",
                         "value": str(exc)})
            continue
        scale = "smoke" if name.endswith("_smoke.json") else "full"
        for metric, value in _headline(name, data):
            rows.append({"artifact": name, "scale": scale,
                         "metric": metric, "value": value})
    return rows


def render(rows: list[dict]) -> str:
    headers = ["artifact", "scale", "metric", "value"]
    table = [[str(r.get(h, "-")) for h in headers] for r in rows]
    widths = [max(len(h), *(len(row[i]) for row in table)) if table else len(h)
              for i, h in enumerate(headers)]
    sep = "-" * (sum(widths) + 2 * (len(headers) - 1))
    lines = ["Perf trajectory (headline numbers from every BENCH artifact)",
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in table]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=_DIR,
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("--json", default=None,
                        help="also write the merged rows to this JSON file")
    args = parser.parse_args(argv)
    rows = collect(args.dir)
    print(render(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
