"""Engine benchmark: batched multi-mpts HDBSCAN* and the serving path.

Two measurements (artifact ``benchmarks/BENCH_engine.json``; smoke runs
write ``BENCH_engine_smoke.json``):

* **multi_mpts** -- the paper's Figure-15 query pattern (an ``mpts`` sweep
  over one dataset), naive per-``mpts`` loop vs ``Engine.hdbscan_batch``.
  The batch form builds the kd-tree and kNN table once for the whole sweep
  and caches every EMST artifact, so it must beat the naive loop at every
  size -- that is the gate CI asserts (``BATCH_GATE``), after first
  checking the batched results are *identical* to the naive loop's (labels,
  probabilities, dendrogram parents, MST edges).

* **serving** -- ``Engine.fit_many`` dispatching N dendrogram fits onto a
  thread pool, each job in a snapshot of the submitting context, vs the
  same fits run serially.  Parents must match the serial run exactly; the
  wall-clock ratio is recorded but not gated (how much the pool helps is
  GIL/BLAS-dependent), since the point of the concurrency contract is
  correctness under concurrency, which `tests/test_concurrency.py` pins.

Run as pytest (``pytest benchmarks/bench_engine.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_engine.py``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import scaled
from repro.engine import Engine
from repro.hdbscan import hdbscan
from repro.core.pandora import pandora
from repro.parallel import debug_checks_set
from repro.structures.tree import random_spanning_tree

N_POINTS = scaled(20_000)
MPTS_VALUES = (2, 4, 8, 16)  # the paper's Figure-15 sweep
SERVE_JOBS = 8
SERVE_EDGES = scaled(60_000)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
#: Below this point count the run is a smoke run: the artifact goes to the
#: smoke file and only the correctness + batch gates are asserted.
FULL_SIZE = 10_000
#: Acceptance bar: batched multi-mpts must beat the naive per-mpts loop.
BATCH_GATE = 1.05

_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_engine.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_engine_smoke.json")


def _make_points(n: int) -> np.ndarray:
    rng = np.random.default_rng(11)
    # Clustered + background mixture: representative HDBSCAN* input.
    centers = rng.uniform(-40.0, 40.0, size=(8, 2))
    assign = rng.integers(0, len(centers), size=n)
    pts = centers[assign] + rng.normal(scale=1.5, size=(n, 2))
    noise = rng.random(n) < 0.05
    pts[noise] = rng.uniform(-50.0, 50.0, size=(int(noise.sum()), 2))
    return pts


def _check_batch_matches_naive(naive, batched, mpts_values) -> None:
    for m, a, b in zip(mpts_values, naive, batched):
        if not np.array_equal(a.labels, b.labels):
            raise AssertionError(f"batched labels differ at mpts={m}")
        if not np.allclose(a.probabilities, b.probabilities):
            raise AssertionError(f"batched probabilities differ at mpts={m}")
        if not np.array_equal(a.dendrogram.parent, b.dendrogram.parent):
            raise AssertionError(f"batched parents differ at mpts={m}")
        if not (np.array_equal(a.mst.u, b.mst.u)
                and np.array_equal(a.mst.v, b.mst.v)
                and np.array_equal(a.mst.w, b.mst.w)):
            raise AssertionError(f"batched MST differs at mpts={m}")


def _bench_multi_mpts(points: np.ndarray, repeats: int) -> dict:
    mpts_values = list(MPTS_VALUES)
    mcs = 25

    # Correctness gate before any timing.
    naive = [hdbscan(points, mpts=m, min_cluster_size=mcs)
             for m in mpts_values]
    batched = Engine().hdbscan_batch(points, mpts_values,
                                     min_cluster_size=mcs)
    _check_batch_matches_naive(naive, batched, mpts_values)

    naive_s, batched_s = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for m in mpts_values:
            hdbscan(points, mpts=m, min_cluster_size=mcs)
        naive_s.append(time.perf_counter() - t0)
        # Fresh engine per repeat: time the batch mechanics, not a warm
        # content cache.
        engine = Engine()
        t0 = time.perf_counter()
        engine.hdbscan_batch(points, mpts_values, min_cluster_size=mcs)
        batched_s.append(time.perf_counter() - t0)

    naive_mean = float(np.mean(naive_s))
    batched_mean = float(np.mean(batched_s))
    return {
        "mpts_values": mpts_values,
        "min_cluster_size": mcs,
        "naive": {"mean": naive_mean, "std": float(np.std(naive_s))},
        "batched": {"mean": batched_mean, "std": float(np.std(batched_s))},
        "speedup": round(naive_mean / max(batched_mean, 1e-12), 3),
    }


def _bench_serving(n_edges: int, repeats: int) -> dict:
    problems = []
    for i in range(SERVE_JOBS):
        rng = np.random.default_rng(500 + i)
        problems.append(random_spanning_tree(n_edges + 1, rng, skew=0.3))

    serial_ref = [pandora(u, v, w)[0].parent for u, v, w in problems]
    engine = Engine(cache_entries=2 * SERVE_JOBS)
    handles = engine.fit_many(problems, max_workers=SERVE_JOBS)
    for i, (ref, handle) in enumerate(zip(serial_ref, handles)):
        if not np.array_equal(handle.parent, ref):
            raise AssertionError(f"serving job {i} parents differ from serial")

    serial_s, pool_s = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for u, v, w in problems:
            pandora(u, v, w)
        serial_s.append(time.perf_counter() - t0)
        engine = Engine(cache_entries=2 * SERVE_JOBS)
        t0 = time.perf_counter()
        engine.fit_many(problems, max_workers=SERVE_JOBS)
        pool_s.append(time.perf_counter() - t0)

    serial_mean = float(np.mean(serial_s))
    pool_mean = float(np.mean(pool_s))
    return {
        "n_jobs": SERVE_JOBS,
        "n_edges_per_job": int(n_edges),
        "workers": SERVE_JOBS,
        "serial": {"mean": serial_mean, "std": float(np.std(serial_s))},
        "pool": {"mean": pool_mean, "std": float(np.std(pool_s))},
        "pool_vs_serial": round(serial_mean / max(pool_mean, 1e-12), 3),
        "parity": True,
    }


def run_engine_bench(
    n_points: int = N_POINTS, repeats: int = REPEATS,
    artifact: str | None = None,
) -> dict:
    if artifact is None:
        artifact = ARTIFACT if n_points >= FULL_SIZE else SMOKE_ARTIFACT
    points = _make_points(n_points)
    with debug_checks_set(False):
        multi = _bench_multi_mpts(points, repeats)
        serving = _bench_serving(SERVE_EDGES, repeats)
    report = {
        "bench": "engine",
        "n_points": int(n_points),
        "repeats": int(repeats),
        "unit": "seconds",
        "multi_mpts": multi,
        "serving": serving,
    }
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_engine_bench():
    report = run_engine_bench()
    multi = report["multi_mpts"]
    print(f"\n[engine] n_points={report['n_points']} "
          f"multi_mpts speedup={multi['speedup']}x "
          f"(naive {multi['naive']['mean']:.3f}s, "
          f"batched {multi['batched']['mean']:.3f}s)")
    print(f"[engine] serving pool_vs_serial="
          f"{report['serving']['pool_vs_serial']}x over "
          f"{report['serving']['n_jobs']} jobs")
    full = report["n_points"] >= FULL_SIZE
    assert os.path.exists(ARTIFACT if full else SMOKE_ARTIFACT)
    # The batch gate holds at every size: the shared kd-tree build + kNN
    # self-query are a real fraction of the sweep even at smoke scale.
    assert multi["speedup"] >= BATCH_GATE, multi


if __name__ == "__main__":
    print(json.dumps(run_engine_bench(), indent=2, sort_keys=True))
