"""Benchmark-suite configuration.

Sizes are reproduction-scale (tens of thousands of points; the paper uses
millions to hundreds of millions).  Modeled device numbers are extrapolated
to the paper's sizes via ``scale_trace`` where a figure reports full-scale
results; measured Python numbers are reported at reproduction scale.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.3`` or ``2``) to shrink/grow every
workload; the first run builds EMST caches under ``benchmarks/.cache`` and
is therefore much slower than subsequent runs.
"""

from __future__ import annotations

import os


def scaled(n: int) -> int:
    """Apply the global benchmark size multiplier."""
    return max(2000, int(n * float(os.environ.get("REPRO_BENCH_SCALE", "1"))))
