"""Ablation: multilevel expansion vs the single-level scheme (Section 3.3.1).

The paper motivates the multilevel leaf-chain scan by showing the
single-level alternative -- walking the contracted dendrogram bottom-up per
edge -- costs Theta(n * h_alpha) in the worst case.  This ablation measures
both on the same inputs:

* a star-heavy random tree (mild alpha-dendrogram height), and
* a pathological "comb" tree engineered for a tall contracted dendrogram,

reporting wall time and the pointer-chase kernel work the single-level walk
emits.  Asserts the multilevel scheme does asymptotically less chain-
assignment work on the pathological input while both produce identical
dendrograms.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import scaled
from repro import dendrogram_single_level, pandora
from repro.bench import emit_table
from repro.parallel.machine import CostModel, tracking
from repro.structures.tree import random_spanning_tree

N = scaled(30_000)


def broom_tree(k: int):
    """Worst case for the single-level walk: a weight-monotone spine whose
    alpha-dendrogram is a k-long chain, plus *heavy* pendants deep in the
    spine.

    A light pendant at every spine vertex keeps each spine edge an
    alpha-edge (the pendant is the vertex's maxIncident).  A heavy pendant
    at deep vertex p_j gets a sorted index between the spine edges near the
    *top* of the chain, so its bottom-up walk climbs ~k/2 dendrogram levels
    before finding a smaller-index ancestor -- Theta(k) per edge, Theta(k^2)
    total, the Figure-10 pathology.
    """
    u, v, w = [], [], []
    nxt = k + 1
    for j in range(k):                      # spine p_j - p_{j+1}
        u.append(j)
        v.append(j + 1)
        w.append(1e6 - j)                   # monotone: chain dendrogram
    for j in range(k + 1):                  # light pendant at every vertex
        u.append(j)
        v.append(nxt)
        w.append(1e-3 + j * 1e-6)
        nxt += 1
    for j in range(k // 2, k):              # heavy pendants deep in the spine
        u.append(j)
        v.append(nxt)
        w.append(1e6 - (j - k // 2) - 0.5)
        nxt += 1
    return np.array(u), np.array(v), np.array(w, dtype=float)


def run_with_trace(fn, *args):
    model = CostModel()
    t0 = time.perf_counter()
    with tracking(model):
        result = fn(*args)
    return result, time.perf_counter() - t0, model


@pytest.fixture(scope="module")
def cases(rng=None):
    rng = np.random.default_rng(99)
    out = {}
    u, v, w = random_spanning_tree(N, rng, skew=0.5)
    out["random(skew=0.5)"] = (u, v, w)
    u, v, w = broom_tree(2 * N // 5)
    out["broom(pathological)"] = (u, v, w)
    return out


def chase_work(model: CostModel) -> int:
    return sum(
        r.work for r in model.records if r.name.startswith("expand1.")
    )


def scan_work(model: CostModel) -> int:
    return sum(
        r.work for r in model.records if r.name.startswith("expand.")
    )


def test_ablation_expansion(benchmark, cases):
    rows = []
    stats = {}
    for name, (u, v, w) in cases.items():
        (d_multi, _), t_multi, m_multi = run_with_trace(pandora, u, v, w)
        (d_single, _), t_single, m_single = run_with_trace(
            dendrogram_single_level, u, v, w
        )
        assert np.array_equal(d_multi.parent, d_single.parent), name
        work_multi = scan_work(m_multi)
        work_single = chase_work(m_single)
        rows.append([
            name, len(u), t_multi, t_single, work_multi, work_single,
            work_single / max(work_multi, 1),
        ])
        stats[name] = (work_multi, work_single, t_multi, t_single)

    emit_table(
        "ablation_expansion",
        ["tree", "n_edges", "multilevel_s", "single_level_s",
         "multilevel_work", "single_level_work", "work_ratio"],
        rows,
        "Ablation (Section 3.3.1 vs 3.3.2): chain-assignment cost of "
        "single-level expansion vs the multilevel scan",
    )

    # the pathological tree must show the asymptotic gap
    wm, ws, tm, ts = stats["broom(pathological)"]
    assert ws > 10 * wm, (
        f"single-level should do far more chain-assignment work: {ws} vs {wm}"
    )
    assert ts > tm, "the extra work should also cost wall-clock time"

    u, v, w = cases["broom(pathological)"]
    benchmark.pedantic(lambda: pandora(u, v, w), rounds=3, iterations=1)
