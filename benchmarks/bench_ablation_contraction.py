"""Ablation: union-find contraction vs the Euler-tour alternative (Section 5).

The paper considered implementing tree contraction via Euler tours (as Wang
et al. [46] do) and rejected it: converting an MST given as an *edge list*
into an Euler tour requires list ranking, which costs O(n log n) pointer-
chasing work and "in practice [takes] time comparable to the full dendrogram
construction".  PANDORA's union-find contraction needs only hook/shortcut
rounds over the edges.

This bench makes the claim quantitative on real MSTs: kernel-trace work and
wall time of (a) the full PANDORA dendrogram construction, (b) just its
union-find contraction stage, and (c) building the Euler tour (arc sort +
list ranking) that the alternative would need *before any contraction work
even starts*.  Asserts Euler-tour construction costs a significant fraction
of the entire dendrogram build, and that its pointer-jump work exceeds the
union-find contraction's.
"""

from __future__ import annotations

import time

import pytest

from conftest import scaled
from repro import pandora
from repro.bench import emit_table, get_mst
from repro.parallel.machine import CostModel, tracking
from repro.structures.euler import euler_tour

N = scaled(30_000)
DATASETS_AB = ["Hacc37M", "Normal100M2D"]


def traced(fn, *args):
    model = CostModel()
    t0 = time.perf_counter()
    with tracking(model):
        out = fn(*args)
    return out, time.perf_counter() - t0, model


@pytest.fixture(scope="module")
def comparisons():
    out = {}
    for name in DATASETS_AB:
        u, v, w, nv = get_mst(name, N, mpts=2)
        (dend, stats), t_pandora, m_pandora = traced(pandora, u, v, w, nv)
        _, t_euler, m_euler = traced(euler_tour, nv, u, v)
        contraction_work = sum(
            r.work for r in m_pandora.records
            if r.phase == "contraction" and r.category in ("scatter", "jump")
        )
        euler_jump_work = sum(
            r.work for r in m_euler.records if r.category == "jump"
        )
        out[name] = dict(
            nv=nv,
            t_pandora=t_pandora,
            t_euler=t_euler,
            contraction_work=contraction_work,
            euler_jump_work=euler_jump_work,
            total_work=sum(r.work for r in m_pandora.records),
        )
    return out


def test_ablation_contraction(benchmark, comparisons):
    rows = []
    for name, c in comparisons.items():
        rows.append([
            name, c["nv"], c["t_pandora"], c["t_euler"],
            c["t_euler"] / c["t_pandora"],
            c["contraction_work"], c["euler_jump_work"],
            c["euler_jump_work"] / max(c["contraction_work"], 1),
        ])
    emit_table(
        "ablation_contraction",
        ["dataset", "n", "pandora_total_s", "euler_tour_s",
         "euler/pandora_time", "uf_contraction_work", "euler_jump_work",
         "work_ratio"],
        rows,
        "Ablation (Section 5): Euler-tour construction cost vs PANDORA's "
        "union-find contraction (paper: the conversion alone is comparable "
        "to the full dendrogram build)",
    )
    for name, c in comparisons.items():
        # Euler tour list-ranking alone out-works the union-find contraction
        # of the entire multilevel hierarchy ...
        assert c["euler_jump_work"] > c["contraction_work"], name
        # ... and its wall-clock time is comparable to the FULL dendrogram
        # construction -- the paper's Section-5 observation verbatim.
        assert c["t_euler"] > 0.5 * c["t_pandora"], (
            f"{name}: Euler tour {c['t_euler']:.3f}s vs PANDORA "
            f"{c['t_pandora']:.3f}s"
        )

    u, v, w, nv = get_mst("Hacc37M", N, mpts=2)
    benchmark.pedantic(lambda: euler_tour(nv, u, v), rounds=3, iterations=1)
