"""Spatial front-end: kd-tree build / kNN / EMST / HDBSCAN at a million points.

PR 7 rebuilt the point-cloud front-end on the backend kernel vocabulary:
level-synchronous kd-tree construction over flat arrays, batched kNN
descent, and dual-tree Boruvka with fused leaf-pair kernels.  This
benchmark measures the phases the paper's end-to-end HDBSCAN* pipeline
spends its time in -- tree build, ``k``-NN self-query, mutual-reachability
EMST, and the full ``hdbscan()`` call -- on every JIT-relevant backend, at
``scaled(1_000_000)`` points (artifact ``benchmarks/BENCH_spatial.json``;
smoke runs write ``BENCH_spatial_smoke.json``).

Acceptance bar (asserted only where it is measurable: numba installed and
>= 4 cores, at >= ``GATE_MIN_POINTS``): end-to-end HDBSCAN on the
``numba-parallel`` backend is **>= 2x** the numpy rate at full size,
>= 1.2x at smoke scale.  Environments without numba record the measured
numpy column ungated -- the committed artifact documents the baseline the
parallel backend is gated against in CI.

Correctness is gated unconditionally before any timing: every registered
backend (JIT *and* interpreted twins) must produce bit-identical HDBSCAN
dendrogram parents and MST total weight at ``PARITY_POINTS`` -- the
determinism contract the spatial kernels are built around.  Interpreted
twins validate the kernel definitions but are excluded from timing.

Run as pytest (``pytest benchmarks/bench_spatial.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_spatial.py``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import scaled
from repro.hdbscan import hdbscan
from repro.parallel import (
    available_backends,
    backend_available,
    debug_checks_set,
    use_backend,
)
from repro.spatial import KDTree, emst, knn_graph

N_POINTS = scaled(1_000_000)
DIMS = 2
MPTS = 4
KNN_K = 8
LEAF_SIZE = 96
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
#: Below this many points the run is a smoke run: the artifact goes to the
#: smoke file and the gate drops to the smoke ratio.
FULL_SIZE = 500_000
FULL_GATE = 2.0
SMOKE_GATE = 1.2
#: Below this many points the gate is recorded but never asserted: phases
#: finish in milliseconds and the ratio measures dispatch overhead, not
#: the kernels.
GATE_MIN_POINTS = 200_000
#: Cross-backend parity size -- bounded so the interpreted twins (pure
#: Python kernel loops) stay affordable inside the bench.
PARITY_POINTS = 2_500
#: Backends worth timing; interpreted twins are parity-only.
TIMED_BACKENDS = ("numpy", "numba", "numba-parallel")

_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_spatial.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_spatial_smoke.json")


def _points(n: int, seed: int = 1234) -> np.ndarray:
    """Clustered cloud: Gaussian blobs plus uniform noise (a realistic
    density mix -- pure uniform under-exercises Boruvka's long tail)."""
    rng = np.random.default_rng(seed)
    n_blobs = 16
    centers = rng.random((n_blobs, DIMS)) * 10.0
    which = rng.integers(0, n_blobs, size=n)
    pts = centers[which] + rng.normal(0.0, 0.12, size=(n, DIMS))
    n_noise = n // 10
    pts[:n_noise] = rng.random((n_noise, DIMS)) * 10.0
    return np.ascontiguousarray(pts)


def _stats(samples: list[float]) -> dict:
    return {"best": min(samples), "mean": float(np.mean(samples)),
            "std": float(np.std(samples))}


def _time_backend(name: str, pts: np.ndarray, repeats: int) -> dict:
    """Best-of-``repeats`` seconds for each spatial phase on one backend."""
    build_s, knn_s, emst_s, e2e_s = [], [], [], []
    with use_backend(name) as backend, debug_checks_set(False):
        if hasattr(backend, "warmup"):
            backend.warmup()
        for _ in range(repeats):
            t0 = time.perf_counter()
            tree = KDTree.build(pts, leaf_size=LEAF_SIZE)
            t1 = time.perf_counter()
            art = knn_graph(pts, KNN_K, tree=tree)
            t2 = time.perf_counter()
            mst = emst(pts, mpts=MPTS, knn=art)
            t3 = time.perf_counter()
            result = hdbscan(pts, mpts=MPTS, leaf_size=LEAF_SIZE)
            t4 = time.perf_counter()
            build_s.append(t1 - t0)
            knn_s.append(t2 - t1)
            emst_s.append(t3 - t2)
            e2e_s.append(t4 - t3)
            assert mst.n_edges == pts.shape[0] - 1
            assert result.mst.w.sum() == mst.w.sum()  # artifact path parity
    return {
        "build": _stats(build_s),
        "knn": _stats(knn_s),
        "emst": _stats(emst_s),
        "hdbscan_e2e": _stats(e2e_s),
        "points_per_second": round(pts.shape[0] / min(e2e_s), 1),
        "boruvka_rounds": int(mst.n_rounds),
    }


def _parity(n: int) -> dict:
    """Bit-identity of dendrogram parents and MST total weight across every
    registered backend (the PR acceptance bar), JIT or interpreted."""
    pts = _points(n, seed=77)
    ref_parent = ref_weight = None
    checked = []
    for name in available_backends():
        if not backend_available(name):
            continue
        with use_backend(name), debug_checks_set(False):
            got = hdbscan(pts, mpts=MPTS, leaf_size=32)
        if ref_parent is None:
            ref_parent = got.dendrogram.parent
            ref_weight = got.mst.w.sum()
        else:
            if not np.array_equal(got.dendrogram.parent, ref_parent):
                raise AssertionError(
                    f"backend {name!r}: dendrogram parents differ"
                )
            if got.mst.w.sum() != ref_weight:
                raise AssertionError(
                    f"backend {name!r}: MST total weight differs "
                    f"({got.mst.w.sum()!r} vs {ref_weight!r})"
                )
        checked.append(name)
    return {"n_points": int(n), "backends": checked, "ok": True}


def run_spatial_bench(
    n_points: int = N_POINTS, repeats: int = REPEATS,
    artifact: str | None = None,
) -> dict:
    if artifact is None:
        artifact = ARTIFACT if n_points >= FULL_SIZE else SMOKE_ARTIFACT
    parity = _parity(min(n_points, PARITY_POINTS))
    pts = _points(n_points)
    timed = {
        name: _time_backend(name, pts, repeats)
        for name in TIMED_BACKENDS if backend_available(name)
    }
    base = timed["numpy"]["hdbscan_e2e"]["best"]
    speedup = {
        name: round(base / max(col["hdbscan_e2e"]["best"], 1e-12), 3)
        for name, col in timed.items()
    }
    cpus = os.cpu_count() or 1
    gate = FULL_GATE if n_points >= FULL_SIZE else SMOKE_GATE
    gated = ("numba-parallel" in timed and cpus >= 4
             and n_points >= GATE_MIN_POINTS)
    report = {
        "bench": "spatial",
        "cpu_count": cpus,
        "n_points": int(n_points),
        "dims": DIMS,
        "mpts": MPTS,
        "knn_k": KNN_K,
        "leaf_size": LEAF_SIZE,
        "repeats": int(repeats),
        "unit": "seconds (best of repeats)",
        "backends": timed,
        "speedup_vs_numpy": speedup,
        "parity": parity,
        "gate": {
            "baseline": "numpy",
            "target": "numba-parallel",
            "phase": "hdbscan_e2e",
            "min_ratio": gate,
            "measured_ratio": speedup.get("numba-parallel"),
            "asserted": gated,
        },
    }
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_spatial_bench():
    report = run_spatial_bench()
    e2e = {name: round(col["hdbscan_e2e"]["best"], 3)
           for name, col in report["backends"].items()}
    print(f"\n[spatial] n={report['n_points']} d={report['dims']} "
          f"mpts={report['mpts']} cpus={report['cpu_count']}")
    print(f"[spatial] hdbscan_e2e_seconds={e2e} "
          f"speedup_vs_numpy={report['speedup_vs_numpy']}")
    print(f"[spatial] parity ok across {report['parity']['backends']}")
    full = report["n_points"] >= FULL_SIZE
    assert os.path.exists(ARTIFACT if full else SMOKE_ARTIFACT)
    assert report["parity"]["ok"]
    gate = report["gate"]
    if gate["asserted"]:
        assert gate["measured_ratio"] >= gate["min_ratio"], (
            f"numba-parallel end-to-end HDBSCAN only "
            f"{gate['measured_ratio']}x numpy (gate {gate['min_ratio']}x)"
        )


if __name__ == "__main__":
    print(json.dumps(run_spatial_bench(), indent=2, sort_keys=True))
