"""Table 1: inventory of dendrogram construction implementations.

The paper's Table 1 surveys available open-source implementations
(sequential scikit-learn/hdbscan/R, Wang et al.'s multithreaded code,
RAPIDS' MST-only GPU path).  This repo *implements* that inventory: the
sequential bottom-up (Algorithm 2), the top-down divide-and-conquer
(Algorithm 1), the Wang-style mixed scheme, the single-level-expansion
ablation, and PANDORA itself.  The bench verifies all five produce the
identical dendrogram on a real workload and times each.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import scaled
from repro import (
    dendrogram_bottomup,
    dendrogram_mixed,
    dendrogram_single_level,
    dendrogram_topdown,
    pandora,
)
from repro.bench import emit_table, get_mst
from repro.perf import mpoints_per_sec

N = scaled(20_000)

IMPLEMENTATIONS = [
    ("bottom-up union-find", "Algorithm 2; sequential (the oracle; models "
     "scikit-learn/hdbscan/R sequential codes)",
     lambda u, v, w, nv: dendrogram_bottomup(u, v, w, nv)),
    ("top-down", "Algorithm 1; divide and conquer, O(nh)",
     lambda u, v, w, nv: dendrogram_topdown(u, v, w, nv)),
    ("mixed (Wang et al.)", "top split + per-subtree bottom-up + stitch",
     lambda u, v, w, nv: dendrogram_mixed(u, v, w, nv)),
    ("PANDORA single-level", "Section 3.3.1 ablation (walks contracted "
     "dendrogram)",
     lambda u, v, w, nv: dendrogram_single_level(u, v, w, nv)[0]),
    ("PANDORA", "multilevel contraction + expansion (this paper)",
     lambda u, v, w, nv: pandora(u, v, w, nv)[0]),
]


@pytest.fixture(scope="module")
def workload():
    return get_mst("Hacc37M", N, mpts=2)


def test_table1_inventory(benchmark, workload):
    u, v, w, nv = workload
    rows = []
    reference = None
    for name, desc, fn in IMPLEMENTATIONS:
        t0 = time.perf_counter()
        dend = fn(u, v, w, nv)
        dt = time.perf_counter() - t0
        if reference is None:
            reference = dend.parent
        identical = bool(np.array_equal(dend.parent, reference))
        rows.append([name, dt, mpoints_per_sec(nv, dt), identical, desc])
        assert identical, f"{name} disagrees with the oracle"

    emit_table(
        "table1",
        ["implementation", "seconds", "MPts/s", "identical", "description"],
        rows,
        f"Table 1: dendrogram implementations on Hacc37M proxy (n={nv:,})",
    )
    benchmark.pedantic(
        lambda: pandora(u, v, w, nv), rounds=3, iterations=1
    )
