"""Table 2: datasets and their dendrogram imbalance.

Reproduces the dataset table with each proxy generator: dimension, the
paper's full size and reported imbalance, our reproduction size, and the
*measured* skewness (height / log2 n) of the mutual-reachability dendrogram
at reproduction scale.

Shape checks (absolute imbalance grows with n, so only orderings are
asserted): every clustered/filament proxy skews far beyond a balanced tree,
and VisualSim -- the paper's mildest dataset (Imb 43 vs 3e3-6e5 elsewhere) --
stays mildest among the GAN proxies.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import pandora
from repro.bench import emit_table, get_mst
from repro.data import DATASETS

N = scaled(20_000)


@pytest.fixture(scope="module")
def skew_rows():
    rows = []
    skews = {}
    for name, spec in DATASETS.items():
        u, v, w, nv = get_mst(name, N, mpts=2)
        dend, stats = pandora(u, v, w, nv)
        skews[name] = dend.skewness
        rows.append(
            [
                name,
                spec.dim,
                spec.paper_npts,
                spec.paper_imbalance,
                nv,
                round(dend.skewness, 1),
                stats.n_levels,
                spec.description,
            ]
        )
    return rows, skews


def test_table2_datasets(benchmark, skew_rows):
    rows, skews = skew_rows
    emit_table(
        "table2",
        ["name", "dim", "paper_npts", "paper_imb", "our_n", "our_skew",
         "levels", "desc"],
        rows,
        "Table 2: dataset proxies and measured dendrogram imbalance",
    )
    # Shape assertions
    for name, skew in skews.items():
        assert skew > 1.0, f"{name}: dendrogram should be skewed"
    assert skews["VisualSim10M5D"] < skews["VisualVar10M2D"], (
        "VisualSim must be the mild case, as in the paper"
    )
    assert skews["VisualSim10M5D"] < skews["VisualVar10M3D"]

    u, v, w, nv = get_mst("VisualVar10M2D", N, mpts=2)
    benchmark.pedantic(lambda: pandora(u, v, w, nv), rounds=3, iterations=1)
