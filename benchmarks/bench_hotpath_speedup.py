"""Hot-path speedup: seed-equivalent vs optimized PANDORA (perf trajectory).

Times the full ``pandora()`` pipeline on a 1M-edge synthetic MST twice:

* **seed_equivalent** -- every hot-path optimization disabled
  (:func:`repro.parallel.seed_equivalent`) and debug validation on, i.e.
  the code path of the seed reproduction;
* **optimized** -- the default configuration (workspace reuse, adaptive
  int32 dtypes, maxIncident-pointer components, pooled expansion, row
  lookups) with debug validation off, i.e. a benchmark run.

Per-phase means and standard deviations over ``REPRO_BENCH_REPEATS``
(default 5) runs are written to ``benchmarks/BENCH_hotpath.json`` so future
PRs can track the trajectory and catch regressions (scaled-down smoke runs
write ``BENCH_hotpath_smoke.json`` instead, so they never clobber the
tracked full-size numbers).  Both variants are first checked to produce
bit-identical parent arrays.  At full size the run asserts the PR's
acceptance bar: >= 1.5x end-to-end and >= 2x on contraction+expansion
combined; smoke runs (CI) assert only the correctness gate, since
millisecond-scale timings on shared runners are noise.

Run as pytest (``pytest benchmarks/bench_hotpath_speedup.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_hotpath_speedup.py``); shrink with
``REPRO_BENCH_SCALE=0.02`` for a smoke run.
"""

from __future__ import annotations

import json
import os

import numpy as np

from conftest import scaled
from repro.core.pandora import pandora
from repro.parallel import (
    debug_checks_set,
    seed_equivalent,
    workspace,
)
from repro.structures.tree import random_spanning_tree

N_EDGES = scaled(1_000_000)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
#: Below this size the acceptance thresholds are not asserted: small inputs
#: are dominated by fixed Python overhead, not memory traffic.
FULL_SIZE = 500_000
#: The tracked perf-trajectory artifact records *full-size* runs only;
#: scaled-down smoke runs write a separate file so they cannot clobber it.
_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_hotpath.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_hotpath_smoke.json")

PHASES = ("sort", "contraction", "expansion")


def _make_mst(n_edges: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    u, v, w = random_spanning_tree(n_edges + 1, rng, skew=0.3)
    return u, v, w


def _time_variant(u, v, w, repeats: int) -> dict[str, list[float]]:
    """Phase wall times per repeat (plus 'total'), after one warmup run."""
    samples: dict[str, list[float]] = {p: [] for p in PHASES}
    samples["total"] = []
    pandora(u, v, w)  # warmup: allocator, caches, workspace
    for _ in range(repeats):
        _, stats = pandora(u, v, w)
        for p in PHASES:
            samples[p].append(stats.phase_seconds[p])
        samples["total"].append(stats.total_seconds)
    return samples


def _summarize(samples: dict[str, list[float]]) -> dict[str, dict[str, float]]:
    return {
        p: {"mean": float(np.mean(ts)), "std": float(np.std(ts))}
        for p, ts in samples.items()
    }


def run_hotpath_bench(
    n_edges: int = N_EDGES, repeats: int = REPEATS, artifact: str | None = None
) -> dict:
    """Measure both variants, write the JSON artifact, return the report."""
    if artifact is None:
        artifact = ARTIFACT if n_edges >= FULL_SIZE else SMOKE_ARTIFACT
    u, v, w = _make_mst(n_edges)

    # Correctness gate before timing: the two variants must agree exactly.
    with seed_equivalent(), debug_checks_set(True):
        d_seed, _ = pandora(u, v, w)
    d_opt, _ = pandora(u, v, w)
    if not np.array_equal(d_seed.parent, d_opt.parent):
        raise AssertionError("optimized parents differ from seed-equivalent")

    with seed_equivalent(), debug_checks_set(True):
        seed = _time_variant(u, v, w, repeats)
    with debug_checks_set(False):
        opt = _time_variant(u, v, w, repeats)

    seed_s, opt_s = _summarize(seed), _summarize(opt)
    speedup = {
        p: seed_s[p]["mean"] / max(opt_s[p]["mean"], 1e-12)
        for p in (*PHASES, "total")
    }
    ce_seed = seed_s["contraction"]["mean"] + seed_s["expansion"]["mean"]
    ce_opt = opt_s["contraction"]["mean"] + opt_s["expansion"]["mean"]
    speedup["contraction_plus_expansion"] = ce_seed / max(ce_opt, 1e-12)

    report = {
        "bench": "hotpath_speedup",
        "n_edges": int(n_edges),
        "repeats": int(repeats),
        "unit": "seconds",
        "variants": {
            "seed_equivalent": seed_s,
            "optimized": opt_s,
        },
        "speedup": {k: round(s, 3) for k, s in speedup.items()},
        "workspace": workspace().stats(),
    }
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_hotpath_speedup():
    report = run_hotpath_bench()
    print(f"\n[hotpath] n_edges={report['n_edges']} "
          f"speedup={report['speedup']}")
    speedup = report["speedup"]
    if report["n_edges"] >= FULL_SIZE:
        assert os.path.exists(ARTIFACT)
        assert speedup["total"] >= 1.5, speedup
        assert speedup["contraction_plus_expansion"] >= 2.0, speedup
    else:
        # Smoke scale is dominated by fixed Python overhead and shared-runner
        # noise, so no timing ratio is asserted; run_hotpath_bench already
        # checked seed/optimized parents are bit-identical.
        assert os.path.exists(SMOKE_ARTIFACT)


if __name__ == "__main__":
    out = run_hotpath_bench()
    print(json.dumps(out, indent=2, sort_keys=True))
