"""Figure 1: where HDBSCAN* time goes, and what PANDORA changes.

The paper's opening figure (Hacc37M, EPYC + MI250X): once the EMST moves to
the GPU, the CPU dendrogram becomes 86% of the pipeline; PANDORA cuts
dendrogram time 17.6x, leaving it at 26% of a much faster pipeline, with a
5.4x end-to-end gain over the MST(GPU)+dendrogram(CPU) configuration
visible in the figure's bars.

Reproduction: modeled paper-scale times for the three configurations:

  A. CPU MST + CPU UnionFind dendrogram        (all-CPU status quo)
  B. GPU MST + CPU UnionFind dendrogram        (the "before" of the paper)
  C. GPU MST + GPU PANDORA dendrogram          (the paper's contribution)

Asserts: dendrogram dominates configuration B (>=60%), drops below 40% in
C, the dendrogram speedup B->C lands near the paper's ~17x, and the
end-to-end B->C gain is severalfold.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro.bench import (
    DEVICE_TRIO,
    emit_table,
    get_mst,
    modeled_emst,
    modeled_unionfind_mt,
    pandora_trace,
)
from repro.data import DATASETS
from repro.parallel.machine import scale_trace

N = scaled(30_000)
DATASET = "Hacc37M"


@pytest.fixture(scope="module")
def configs():
    cpu = DEVICE_TRIO["epyc7a53"]
    gpu = DEVICE_TRIO["mi250x"]
    paper_n = DATASETS[DATASET].paper_npts

    u, v, w, nv = get_mst(DATASET, N, mpts=2)
    factor = paper_n / nv
    dtrace = scale_trace(pandora_trace(u, v, w, nv), factor)

    mst_cpu = modeled_emst(paper_n, cpu, mpts=2)
    mst_gpu = modeled_emst(paper_n, gpu, mpts=2)
    dendro_uf_cpu = modeled_unionfind_mt(paper_n - 1, cpu)
    dendro_pan_gpu = dtrace.modeled_time(gpu)

    return {
        "A: MST(CPU)+dendro(CPU-UF)": (mst_cpu, dendro_uf_cpu),
        "B: MST(GPU)+dendro(CPU-UF)": (mst_gpu, dendro_uf_cpu),
        "C: MST(GPU)+dendro(GPU-PANDORA)": (mst_gpu, dendro_pan_gpu),
    }


def test_fig01_breakdown(benchmark, configs):
    rows = []
    for name, (mst_t, dendro_t) in configs.items():
        total = mst_t + dendro_t
        rows.append([name, mst_t, dendro_t, total, dendro_t / total])
    emit_table(
        "fig01",
        ["configuration", "mst_s", "dendrogram_s", "total_s",
         "dendro_fraction"],
        rows,
        "Figure 1: Hacc37M pipeline breakdown at paper scale "
        "(paper: dendro 86% in B; 17.6x dendro and 5.4x total gain B->C)",
    )

    (mst_b, den_b) = configs["B: MST(GPU)+dendro(CPU-UF)"]
    (mst_c, den_c) = configs["C: MST(GPU)+dendro(GPU-PANDORA)"]
    frac_b = den_b / (mst_b + den_b)
    frac_c = den_c / (mst_c + den_c)
    dendro_gain = den_b / den_c
    total_gain = (mst_b + den_b) / (mst_c + den_c)

    assert frac_b >= 0.60, f"dendrogram should dominate config B: {frac_b:.2f}"
    assert frac_c <= 0.40, f"PANDORA should shrink the share: {frac_c:.2f}"
    assert 8 <= dendro_gain <= 40, (
        f"dendrogram gain {dendro_gain:.1f} far from the paper's 17.6x"
    )
    assert 2 <= total_gain <= 12, (
        f"end-to-end gain {total_gain:.1f} far from the paper's 5.4x"
    )

    u, v, w, nv = get_mst(DATASET, N, mpts=2)
    benchmark.pedantic(
        lambda: pandora_trace(u, v, w, nv), rounds=3, iterations=1
    )
