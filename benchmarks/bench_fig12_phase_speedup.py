"""Figure 12: per-phase GPU speedup (MI250X over 64-core EPYC).

The paper breaks HDBSCAN*-with-PANDORA into phases -- EMST construction,
whole dendrogram, and within it sort / contraction / expansion -- and shows
MI250X-over-EPYC speedups per phase for six datasets: sorting scales best
(8-16x), multilevel contraction worst (3-5x), expansion in between (5-12x),
MST 6-16x.

Reproduction: kernel traces of the EMST and of PANDORA, priced on both
device models at paper scale; speedup = modeled CPU time / modeled GPU time
per phase.  Asserts each phase lands in (a slightly widened) paper band and
the ordering sort > expansion > contraction holds on average.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import scaled
from repro.bench import (
    DEVICE_TRIO,
    emit_table,
    emst_trace_cached,
    get_mst,
    pandora_trace,
)
from repro.data import DATASETS
from repro.parallel.machine import scale_trace

N = scaled(15_000)

FIG12_DATASETS = [
    "Normal100M2D", "Hacc37M", "Uniform100M3D", "Pamap2", "Farm",
    "VisualSim10M5D",
]

#: paper bands per phase (min, max), slightly widened for model tolerance
BANDS = {
    "mst": (4, 20),
    "dendrogram": (5, 16),
    "sort": (6, 18),
    "contraction": (2.5, 6.5),
    "expansion": (4, 13),
}


@pytest.fixture(scope="module")
def phase_speedups():
    cpu = DEVICE_TRIO["epyc7a53"]
    gpu = DEVICE_TRIO["mi250x"]
    out = {}
    for name in FIG12_DATASETS:
        u, v, w, nv = get_mst(name, N, mpts=2)
        factor = DATASETS[name].paper_npts / nv
        dtrace = scale_trace(pandora_trace(u, v, w, nv), factor)
        mtrace = scale_trace(emst_trace_cached(name, N, mpts=2), factor)

        cpu_bd = dtrace.phase_breakdown(cpu)
        gpu_bd = dtrace.phase_breakdown(gpu)
        speeds = {
            ph: cpu_bd[ph] / gpu_bd[ph] for ph in ("sort", "contraction",
                                                   "expansion")
        }
        speeds["dendrogram"] = sum(cpu_bd.values()) / sum(gpu_bd.values())
        speeds["mst"] = (
            mtrace.modeled_time(cpu, phase="mst")
            / mtrace.modeled_time(gpu, phase="mst")
        )
        out[name] = speeds
    return out


def test_fig12_phase_speedups(benchmark, phase_speedups):
    phases = ["mst", "dendrogram", "sort", "contraction", "expansion"]
    rows = [
        [name] + [round(speeds[p], 1) for p in phases]
        for name, speeds in phase_speedups.items()
    ]
    emit_table(
        "fig12",
        ["dataset"] + [f"{p}_speedup" for p in phases],
        rows,
        "Figure 12: modeled MI250X-over-EPYC speedup per phase "
        "(paper: mst 6-16, dendrogram 6-11, sort 8-16, contraction 3-5, "
        "expansion 5-12)",
    )
    for name, speeds in phase_speedups.items():
        for phase, (lo, hi) in BANDS.items():
            assert lo <= speeds[phase] <= hi, (
                f"{name}/{phase}: speedup {speeds[phase]:.1f} outside "
                f"[{lo}, {hi}]"
            )
    # ordering: sorting scales best, contraction worst (paper Section 6.4.3)
    mean = {p: np.mean([s[p] for s in phase_speedups.values()])
            for p in ("sort", "contraction", "expansion")}
    assert mean["sort"] > mean["expansion"] > mean["contraction"]

    u, v, w, nv = get_mst("Hacc37M", N, mpts=2)
    benchmark.pedantic(
        lambda: pandora_trace(u, v, w, nv), rounds=3, iterations=1
    )
