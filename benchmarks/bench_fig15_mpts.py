"""Figure 15: HDBSCAN* cost vs the mpts parameter.

The paper sweeps mpts in {2, 4, 8, 16} on Hacc37M and Uniform100M3D and
compares the CPU pipeline (MemoGFK: multithreaded MST + UnionFind-MT
dendrogram) against the GPU pipeline (ArborX MST + PANDORA), reporting total
and dendrogram-only times.  Key shapes: dendrogram time grows with mpts much
faster for UnionFind (1.6-2.4x from mpts 2 to 16) than for PANDORA
(1.1-1.5x); the GPU pipeline wins by 8-12x overall; the dendrogram is less
than a third of GPU total but up to half of CPU total.

Reproduction at reproduction scale: measured Python times for both
dendrogram algorithms on the same mutual-reachability MSTs, plus modeled
paper-scale device times for the full pipeline.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro.bench import (
    DEVICE_TRIO,
    emit_table,
    get_mst,
    modeled_emst,
    modeled_unionfind_mt,
    pandora_trace,
    time_dendrogram,
)
from repro.data import DATASETS
from repro.parallel.machine import scale_trace

N = scaled(15_000)
MPTS_VALUES = [2, 4, 8, 16]
DATASETS_F15 = ["Hacc37M", "Uniform100M3D"]


@pytest.fixture(scope="module")
def sweep():
    cpu = DEVICE_TRIO["epyc7a53"]
    gpu = DEVICE_TRIO["mi250x"]
    out = {}
    for name in DATASETS_F15:
        paper_n = DATASETS[name].paper_npts
        per_mpts = []
        for mpts in MPTS_VALUES:
            u, v, w, nv = get_mst(name, N, mpts=mpts)
            factor = paper_n / nv
            t_uf, _ = time_dendrogram("unionfind", u, v, w, nv, repeats=2)
            t_pan, _ = time_dendrogram("pandora", u, v, w, nv, repeats=3)
            dtrace = scale_trace(pandora_trace(u, v, w, nv), factor)
            mst_cpu = modeled_emst(paper_n, cpu, mpts=mpts)
            mst_gpu = modeled_emst(paper_n, gpu, mpts=mpts)
            dendro_gpu = dtrace.modeled_time(gpu)
            dendro_cpu_uf = modeled_unionfind_mt(paper_n - 1, cpu)
            per_mpts.append(
                dict(
                    mpts=mpts,
                    t_uf=t_uf,
                    t_pan=t_pan,
                    total_cpu=mst_cpu + dendro_cpu_uf,
                    dendro_cpu=dendro_cpu_uf,
                    total_gpu=mst_gpu + dendro_gpu,
                    dendro_gpu=dendro_gpu,
                )
            )
        out[name] = per_mpts
    return out


def test_fig15_mpts(benchmark, sweep):
    rows = []
    for name, per_mpts in sweep.items():
        for e in per_mpts:
            rows.append([
                name, e["mpts"], e["t_uf"], e["t_pan"],
                e["total_cpu"], e["dendro_cpu"],
                e["total_gpu"], e["dendro_gpu"],
                e["total_cpu"] / e["total_gpu"],
            ])
    emit_table(
        "fig15",
        ["dataset", "mpts", "meas_UF_s", "meas_PAN_s",
         "model_total_CPU_s", "model_dendro_CPU_s",
         "model_total_GPU_s", "model_dendro_GPU_s", "total_speedup"],
        rows,
        "Figure 15: HDBSCAN* (MST + dendrogram) vs mpts "
        "(paper: GPU pipeline 8-12x faster; dendrogram growth with mpts "
        "1.6-2.4x for UF vs 1.1-1.5x for PANDORA)",
    )

    for name, per_mpts in sweep.items():
        # measured dendrogram-time growth from mpts=2 to mpts=16
        uf_growth = per_mpts[-1]["t_uf"] / per_mpts[0]["t_uf"]
        pan_growth = per_mpts[-1]["t_pan"] / per_mpts[0]["t_pan"]
        assert pan_growth < uf_growth * 1.5, (
            f"{name}: PANDORA should scale with mpts no worse than UF "
            f"(pan {pan_growth:.2f} vs uf {uf_growth:.2f})"
        )
        for e in per_mpts:
            speedup = e["total_cpu"] / e["total_gpu"]
            assert 3 <= speedup <= 25, (
                f"{name} mpts={e['mpts']}: pipeline speedup {speedup:.1f} "
                "outside plausible band"
            )
            # dendrogram share: under half of the GPU pipeline
            assert e["dendro_gpu"] / e["total_gpu"] < 0.5

    u, v, w, nv = get_mst("Hacc37M", N, mpts=8)
    benchmark.pedantic(
        lambda: time_dendrogram("pandora", u, v, w, nv, repeats=1),
        rounds=3, iterations=1,
    )
