"""Sort-engine benchmark: the key-narrowing + radix subsystem vs references.

The PR-2 phase breakdown (``BENCH_backends.json``) put the numpy backend's
sort phase at ~0.59 of the 1M-edge end-to-end time -- the largest cost
after the PR-1 contraction/expansion speedups.  This bench measures what
the shared :mod:`repro.parallel.sortlib` engine does about it, per backend
and per size (100k / 1M edges):

* **canonical sort** (``edges.sort_desc``): the monotone-u64-key LSD radix
  vs the two-key ``lexsort((ids, -w))`` reference (the ``radix_sort``
  hot-path flag pins the reference path), plus the *engine gate* pair --
  the radix engine and a plain stable ``np.argsort`` timed on the same
  pre-encoded key, which is what the CI smoke gate compares (the engine
  regressing below the argsort it replaced means the pass structure
  stopped paying for itself);
* **chain-stitch sort** (``stitch.chain_sort``): the bounded
  counting/radix sort vs the stable-argsort reference;
* **end-to-end**: full ``pandora()`` runs on the numpy backend with the
  engine on and off -- the sort-phase speedup and the new sort_fraction,
  the acceptance numbers of the sortlib PR (>= 1.5x phase speedup and
  sort_fraction < 0.45 at 1M edges, asserted at full size).

Each timed strategy records the :class:`~repro.parallel.sortlib.SortPlan`
it selects, so the artifact documents *why* a number moved.  Correctness
is gated before timing: every radix order must equal its reference order
bit for bit.

Artifacts: full-size runs (>= 500k edges) write the tracked
``benchmarks/BENCH_sort.json``; scaled-down smoke runs (CI,
``REPRO_BENCH_SCALE=0.02``) write ``BENCH_sort_smoke.json``.

Run as pytest (``pytest benchmarks/bench_sort.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_sort.py``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import scaled
from repro.core.pandora import pandora
from repro.parallel import (
    available_backends,
    debug_checks_set,
    get_backend,
    hotpath,
    use_backend,
)
from repro.parallel.sortlib import (
    plan_bounded,
    plan_unsigned,
    stable_argsort_unsigned,
)
from repro.structures.tree import random_spanning_tree

SIZES = sorted({scaled(100_000), scaled(1_000_000)})
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
#: Below this size the acceptance bars are not asserted and the smoke
#: artifact is written instead of the tracked one.
FULL_SIZE = 500_000
#: Smoke-gate slack: the radix canonical sort must not be slower than the
#: plain stable argsort of the same narrowed key by more than this factor.
ARGSORT_GATE_SLACK = 1.25
_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_sort.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_sort_smoke.json")


def _timeit(fn, repeats: int) -> dict:
    fn()  # warmup: workspace growth, JIT compilation
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {"mean": float(np.mean(samples)), "std": float(np.std(samples)),
            "min": float(np.min(samples))}


def _make_inputs(n: int):
    rng = np.random.default_rng(7)
    u, v, w = random_spanning_tree(n + 1, rng, skew=0.3)
    ids = np.arange(n, dtype=np.int64)
    # Chain-shaped stitch keys: 2*anchor + side with a root-chain tail of
    # -1s (the stitch sort's actual key distribution shape).
    anchor = rng.integers(0, n, size=n)
    key = 2 * anchor + rng.integers(0, 2, size=n)
    key[rng.random(n) < 0.02] = -1
    return u, v, w, ids, key


def _bench_backend_sorts(name: str, w, ids, key, n: int, repeats: int) -> dict:
    with use_backend(name):
        backend = get_backend()
        # correctness gates before timing
        radix_canon = backend.canonical_sort_order(w, ids, name=None)
        radix_chain = backend.argsort_bounded(key, -1, 2 * n + 1, name=None)
        with hotpath(radix_sort=False):
            ref_canon = backend.canonical_sort_order(w, ids, name=None)
            ref_chain = backend.argsort_bounded(key, -1, 2 * n + 1, name=None)
        if not np.array_equal(radix_canon, ref_canon):
            raise AssertionError(f"{name}: canonical radix order != lexsort")
        if not np.array_equal(radix_chain, ref_chain):
            raise AssertionError(f"{name}: chain radix order != argsort")

        out = {
            "canonical": {
                "radix": _timeit(
                    lambda: backend.canonical_sort_order(w, ids, name=None),
                    repeats,
                ),
                "strategy": plan_unsigned(n, 64).describe(),
            },
            "chain": {
                "radix": _timeit(
                    lambda: backend.argsort_bounded(
                        key, -1, 2 * n + 1, name=None
                    ),
                    repeats,
                ),
                "strategy": plan_bounded(n, -1, 2 * n + 1).describe(),
            },
        }
        with hotpath(radix_sort=False):
            out["canonical"]["lexsort_reference"] = _timeit(
                lambda: backend.canonical_sort_order(w, ids, name=None),
                repeats,
            )
            out["chain"]["argsort_reference"] = _timeit(
                lambda: backend.argsort_bounded(key, -1, 2 * n + 1, name=None),
                repeats,
            )
        for site in ("canonical", "chain"):
            ref_key = ("lexsort_reference" if site == "canonical"
                       else "argsort_reference")
            out[site]["speedup"] = round(
                out[site][ref_key]["mean"]
                / max(out[site]["radix"]["mean"], 1e-12), 3
            )
    return out


def _bench_engine_gate(w, n: int, repeats: int) -> dict:
    """The CI regression gate's pair: the radix engine vs a plain stable
    ``np.argsort``, both on the *same* pre-encoded u64 key.

    Using one shared key isolates the pass structure itself (encoding cost
    and strategy crossover noise would otherwise dominate at smoke sizes);
    the gate asserts the engine never loses to the argsort it replaced.
    """
    from repro.parallel.sortlib import encode_weights_descending

    encoded = encode_weights_descending(w).copy()
    return {
        "radix_engine": _timeit(
            lambda: stable_argsort_unsigned(encoded), repeats
        ),
        "argsort": _timeit(
            lambda: np.argsort(encoded, kind="stable"), repeats
        ),
    }


def _bench_e2e(u, v, w, repeats: int) -> dict:
    def phase_run():
        _, stats = pandora(u, v, w)
        return stats

    def sample(repeats):
        phase_run()  # warmup
        sort_s, total_s = [], []
        for _ in range(repeats):
            stats = phase_run()
            sort_s.append(stats.phase_seconds["sort"])
            total_s.append(stats.total_seconds)
        return {
            "sort": {"mean": float(np.mean(sort_s)),
                     "std": float(np.std(sort_s))},
            "total": {"mean": float(np.mean(total_s)),
                      "std": float(np.std(total_s))},
            "sort_fraction": round(
                float(np.mean(sort_s)) / max(float(np.mean(total_s)), 1e-12),
                4,
            ),
        }

    out = {"radix": sample(repeats)}
    with hotpath(radix_sort=False):
        out["reference"] = sample(repeats)
    out["sort_phase_speedup"] = round(
        out["reference"]["sort"]["mean"]
        / max(out["radix"]["sort"]["mean"], 1e-12), 3
    )
    out["total_speedup"] = round(
        out["reference"]["total"]["mean"]
        / max(out["radix"]["total"]["mean"], 1e-12), 3
    )
    return out


def run_sort_bench(
    sizes: list[int] | None = None,
    repeats: int = REPEATS,
    artifact: str | None = None,
) -> dict:
    if sizes is None:
        sizes = SIZES
    full = max(sizes) >= FULL_SIZE
    if artifact is None:
        artifact = ARTIFACT if full else SMOKE_ARTIFACT

    timed = [
        name for name, ok in available_backends().items()
        if ok and name != "numba-python"
    ]
    report: dict = {
        "bench": "sort",
        "repeats": int(repeats),
        "unit": "seconds",
        "backends": timed,
        "sizes": {},
    }
    with debug_checks_set(False):
        for n in sizes:
            u, v, w, ids, key = _make_inputs(n)
            entry: dict = {"backends": {}}
            for name in timed:
                entry["backends"][name] = _bench_backend_sorts(
                    name, w, ids, key, n, repeats
                )
            entry["engine_gate"] = _bench_engine_gate(w, n, repeats)
            entry["e2e_numpy"] = _bench_e2e(u, v, w, repeats)
            report["sizes"][str(n)] = entry

    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_sort_bench():
    report = run_sort_bench()
    full = max(int(k) for k in report["sizes"]) >= FULL_SIZE
    assert os.path.exists(ARTIFACT if full else SMOKE_ARTIFACT)
    for n_str, entry in report["sizes"].items():
        np_canon = entry["backends"]["numpy"]["canonical"]
        e2e = entry["e2e_numpy"]
        print(f"\n[sort] n={n_str} canonical: radix="
              f"{np_canon['radix']['mean']:.4f}s "
              f"lexsort={np_canon['lexsort_reference']['mean']:.4f}s "
              f"({np_canon['speedup']}x, {np_canon['strategy']}) | "
              f"e2e sort speedup={e2e['sort_phase_speedup']}x "
              f"sort_fraction={e2e['radix']['sort_fraction']}")
        # Regression gate (every size, including CI smoke): the radix pass
        # structure must not lose to a plain stable argsort of the same
        # pre-encoded key.  Compared on ``min`` -- steady-state capability
        # -- because at smoke sizes the samples are microsecond-scale and
        # a single scheduler spike would flake a mean-based gate.
        gate = entry["engine_gate"]
        assert (gate["radix_engine"]["min"]
                <= gate["argsort"]["min"] * ARGSORT_GATE_SLACK), (
            n_str, gate)
        if int(n_str) >= FULL_SIZE:
            # Acceptance bars of the sortlib PR at full size.
            assert e2e["sort_phase_speedup"] >= 1.5, e2e
            assert e2e["radix"]["sort_fraction"] < 0.45, e2e


if __name__ == "__main__":
    print(json.dumps(run_sort_bench(), indent=2, sort_keys=True))
