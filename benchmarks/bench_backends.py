"""Backend comparison: NumPy vs Numba-JIT on the 1M-edge synthetic MST.

Follows up the ROADMAP sort note (the sort phase was ~60% of the optimized
1M-edge run after PR 1): times the full ``pandora()`` pipeline on every
*available* registered execution backend and records, per backend,

* per-phase means/stds over ``REPRO_BENCH_REPEATS`` runs,
* the **sort-phase fraction** of the end-to-end time -- the before/after
  evidence for the numba backend's key-narrowed canonical sort,
* speedups relative to the ``numpy`` backend (total, sort, and
  contraction+expansion combined, the fused scatter/jump kernels' share).

Seed-parity gated like ``bench_hotpath_speedup.py``: before any timing,
every backend's parent array is checked bit-identical against the numpy
backend's, and their kernel traces are compared at a sub-size (trace
comparison at full scale would just burn memory).  At full size
(>= 500k edges) with numba installed, the run asserts the acceptance bar:
the numba backend beats numpy on contraction+expansion combined.  Smoke
runs (CI, ``REPRO_BENCH_SCALE=0.02``) assert only the correctness gates.

The tracked artifact ``benchmarks/BENCH_backends.json`` records full-size
runs only; scaled-down smoke runs write ``BENCH_backends_smoke.json`` so
they never clobber the trajectory numbers.  Environments without numba
record its entry as ``{"available": false}`` rather than failing -- the
numpy-only CI matrix exercises exactly that path.

Run as pytest (``pytest benchmarks/bench_backends.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_backends.py``).
"""

from __future__ import annotations

import json
import os

import numpy as np

from conftest import scaled
from repro.core.pandora import pandora
from repro.parallel import (
    CostModel,
    available_backends,
    debug_checks_set,
    tracking,
    use_backend,
)
from repro.structures.tree import random_spanning_tree

N_EDGES = scaled(1_000_000)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
#: Below this size the speedup bar is not asserted (fixed Python overhead
#: dominates) and the smoke artifact is written instead of the tracked one.
FULL_SIZE = 500_000
#: Kernel traces are compared at this sub-size; the trace is size-invariant
#: in shape, so a small run pins backend-schedule parity cheaply.
TRACE_SIZE = 20_000
_DIR = os.path.dirname(__file__)
ARTIFACT = os.path.join(_DIR, "BENCH_backends.json")
SMOKE_ARTIFACT = os.path.join(_DIR, "BENCH_backends_smoke.json")

PHASES = ("sort", "contraction", "expansion")


def _make_mst(n_edges: int):
    rng = np.random.default_rng(7)
    return random_spanning_tree(n_edges + 1, rng, skew=0.3)


def _trace(u, v, w) -> list[tuple]:
    model = CostModel()
    with tracking(model):
        pandora(u, v, w)
    return [(r.name, r.category, r.work, r.phase) for r in model.records]


def _time_backend(u, v, w, repeats: int) -> dict[str, list[float]]:
    samples: dict[str, list[float]] = {p: [] for p in PHASES}
    samples["total"] = []
    pandora(u, v, w)  # warmup: allocator, workspace, JIT compilation
    for _ in range(repeats):
        _, stats = pandora(u, v, w)
        for p in PHASES:
            samples[p].append(stats.phase_seconds[p])
        samples["total"].append(stats.total_seconds)
    return samples


def _summarize(samples: dict[str, list[float]]) -> dict:
    out = {
        p: {"mean": float(np.mean(ts)), "std": float(np.std(ts))}
        for p, ts in samples.items()
    }
    out["sort_fraction"] = round(
        out["sort"]["mean"] / max(out["total"]["mean"], 1e-12), 4
    )
    return out


def run_backend_bench(
    n_edges: int = N_EDGES, repeats: int = REPEATS, artifact: str | None = None
) -> dict:
    """Measure every available backend; write the artifact; return report."""
    if artifact is None:
        artifact = ARTIFACT if n_edges >= FULL_SIZE else SMOKE_ARTIFACT
    u, v, w = _make_mst(n_edges)
    su, sv, sw = _make_mst(min(n_edges, TRACE_SIZE))

    # ``numba-python`` is a parity/debugging tool (interpreted loops); it is
    # deliberately not timed at benchmark scale.
    timed = [
        name for name, ok in available_backends().items()
        if ok and name != "numba-python"
    ]
    assert timed[0] == "numpy"

    # Correctness gates before timing: bit-identical parents at full size,
    # identical kernel traces at the sub-size, for every timed backend.
    ref_dend, _ = pandora(u, v, w)
    ref_trace = _trace(su, sv, sw)
    for name in timed[1:]:
        with use_backend(name):
            got_dend, _ = pandora(u, v, w)
            got_trace = _trace(su, sv, sw)
        if not np.array_equal(got_dend.parent, ref_dend.parent):
            raise AssertionError(f"backend {name!r} parents differ from numpy")
        if got_trace != ref_trace:
            raise AssertionError(f"backend {name!r} kernel trace differs")

    variants: dict[str, dict] = {}
    with debug_checks_set(False):
        for name in timed:
            with use_backend(name):
                variants[name] = _summarize(_time_backend(u, v, w, repeats))
    for name, ok in available_backends().items():
        if name not in variants:
            variants[name] = {"available": False} if not ok else {
                "available": True, "timed": False
            }

    report: dict = {
        "bench": "backends",
        "n_edges": int(n_edges),
        "repeats": int(repeats),
        "unit": "seconds",
        "variants": variants,
    }
    if "numba" in timed:
        np_s, nb_s = variants["numpy"], variants["numba"]
        ce_np = np_s["contraction"]["mean"] + np_s["expansion"]["mean"]
        ce_nb = nb_s["contraction"]["mean"] + nb_s["expansion"]["mean"]
        report["numba_speedup_vs_numpy"] = {
            "total": round(np_s["total"]["mean"] / max(nb_s["total"]["mean"], 1e-12), 3),
            "sort": round(np_s["sort"]["mean"] / max(nb_s["sort"]["mean"], 1e-12), 3),
            "contraction_plus_expansion": round(ce_np / max(ce_nb, 1e-12), 3),
        }
        report["sort_fraction"] = {
            "numpy": np_s["sort_fraction"],
            "numba": nb_s["sort_fraction"],
        }
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def test_backend_bench():
    report = run_backend_bench()
    print(f"\n[backends] n_edges={report['n_edges']} "
          f"variants={list(report['variants'])}")
    full = report["n_edges"] >= FULL_SIZE
    assert os.path.exists(ARTIFACT if full else SMOKE_ARTIFACT)
    speedup = report.get("numba_speedup_vs_numpy")
    if speedup is not None:
        print(f"[backends] numba_speedup={speedup} "
              f"sort_fraction={report['sort_fraction']}")
        if full:
            # Acceptance bar: the fused JIT kernels beat the NumPy backend
            # on the scatter/jump-heavy phases at full size.
            assert speedup["contraction_plus_expansion"] >= 1.0, speedup


if __name__ == "__main__":
    print(json.dumps(run_backend_bench(), indent=2, sort_keys=True))
