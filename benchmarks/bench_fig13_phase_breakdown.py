"""Figure 13: PANDORA time breakdown on the 64-core CPU.

The paper shows that on the CPU, sorting dominates (0.67-0.85 of PANDORA
time), multilevel contraction takes 0.12-0.22, and expansion is negligible
(0.03-0.10) -- the argument for why contraction's poor GPU scaling
(Figure 12) does not hurt overall performance.

Reproduction: modeled EPYC phase fractions from the paper-scale kernel
trace, plus the *measured* Python wall-clock fractions at reproduction scale
for comparison.  Asserts sort > contraction > expansion with sort the
majority.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import pandora
from repro.bench import DEVICE_TRIO, emit_table, get_mst, pandora_trace
from repro.data import DATASETS
from repro.parallel.machine import scale_trace

N = scaled(30_000)

FIG13_DATASETS = [
    "Pamap2", "VisualSim10M5D", "Farm", "Hacc37M", "Normal100M2D",
    "Uniform100M3D",
]


@pytest.fixture(scope="module")
def breakdowns():
    cpu = DEVICE_TRIO["epyc7a53"]
    out = {}
    for name in FIG13_DATASETS:
        u, v, w, nv = get_mst(name, N, mpts=2)
        trace = scale_trace(
            pandora_trace(u, v, w, nv), DATASETS[name].paper_npts / nv
        )
        bd = trace.phase_breakdown(cpu)
        total = sum(bd.values())
        modeled = {k: v / total for k, v in bd.items()}
        _, stats = pandora(u, v, w, nv)
        meas_total = sum(stats.phase_seconds.values())
        measured = {k: v / meas_total for k, v in stats.phase_seconds.items()}
        out[name] = (modeled, measured)
    return out


def test_fig13_breakdown(benchmark, breakdowns):
    rows = []
    for name, (modeled, measured) in breakdowns.items():
        rows.append([
            name,
            round(modeled["sort"], 2),
            round(modeled["contraction"], 2),
            round(modeled["expansion"], 2),
            round(measured["sort"], 2),
            round(measured["contraction"], 2),
            round(measured["expansion"], 2),
        ])
    emit_table(
        "fig13",
        ["dataset", "model_sort", "model_contr", "model_exp",
         "meas_sort", "meas_contr", "meas_exp"],
        rows,
        "Figure 13: PANDORA CPU phase fractions "
        "(paper: sort 0.67-0.85, contraction 0.12-0.22, expansion 0.03-0.10)",
    )
    for name, (modeled, _) in breakdowns.items():
        assert modeled["sort"] > 0.5, f"{name}: sort must dominate on CPU"
        assert modeled["sort"] > modeled["contraction"] > modeled["expansion"], (
            f"{name}: expected sort > contraction > expansion, got {modeled}"
        )
        assert 0.55 <= modeled["sort"] <= 0.92
        assert 0.05 <= modeled["contraction"] <= 0.30

    u, v, w, nv = get_mst("Pamap2", N, mpts=2)
    benchmark.pedantic(lambda: pandora(u, v, w, nv), rounds=3, iterations=1)
